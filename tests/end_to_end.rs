//! Workspace-level integration tests: the full pipeline (frontend → facts
//! → callgraph → numbering → analyses → queries) through the umbrella
//! crate's public API.

use whale::core::queries::{leak_query, type_refinement, RefineVariant};
use whale::prelude::*;

const APP: &str = r#"
class Node extends Object {
  field next: Node;
  field payload: Object;
}
class List extends Object {
  field head: Node;

  method push(v: Object) {
    var n: Node;
    var old: Node;
    n = new Node;
    n.payload = v;
    old = this.head;
    n.next = old;
    this.head = n;
  }

  method peek(): Object {
    var n: Node;
    var r: Object;
    n = this.head;
    r = n.payload;
    return r;
  }
}
class A extends Object { }
class B extends Object { }
class Main extends Object {
  entry static method main() {
    var la: List;
    var lb: List;
    var a: A;
    var b: B;
    var outa: Object;
    var outb: Object;
    la = new List;
    lb = new List;
    a = new A;
    b = new B;
    la.push(a);
    lb.push(b);
    outa = la.peek();
    outb = lb.peek();
  }
}
"#;

fn pipeline() -> (Facts, CallGraph, ContextNumbering) {
    let program = parse_program(APP).unwrap();
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts).unwrap();
    let numbering = number_contexts(&cg);
    (facts, cg, numbering)
}

fn var_id(facts: &Facts, suffix: &str) -> u64 {
    facts
        .var_names
        .iter()
        .position(|n| {
            n.rsplit_once('#')
                .map(|(h, _)| h.ends_with(suffix))
                .unwrap_or(false)
        })
        .unwrap_or_else(|| panic!("var {suffix}")) as u64
}

fn heap_id(facts: &Facts, prefix: &str) -> u64 {
    facts
        .heap_names
        .iter()
        .position(|n| n.starts_with(prefix))
        .unwrap_or_else(|| panic!("heap {prefix}")) as u64
}

/// The two lists are merged context-insensitively (both `push` calls go to
/// the same clone) but separated context-sensitively — the paper's core
/// claim, on a heap-carried flow.
#[test]
fn lists_separated_by_context_sensitivity() {
    let (facts, cg, numbering) = pipeline();
    let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None).unwrap();
    let cs = context_sensitive(&facts, &cg, &numbering, None).unwrap();
    let outa = var_id(&facts, "main::outa");
    let ha = heap_id(&facts, "A@");
    let hb = heap_id(&facts, "B@");
    // CI: outa conflates A and B payloads.
    assert!(ci.engine.relation_contains("vP", &[outa, ha]).unwrap());
    assert!(ci.engine.relation_contains("vP", &[outa, hb]).unwrap());
    // CS: hP is context-insensitive in Algorithm 5 (h1 is not context
    // qualified), so heap-carried conflation can persist; but the Node
    // objects themselves are separated per context.
    let node_sites: Vec<u64> = facts
        .heap_names
        .iter()
        .enumerate()
        .filter(|(_, n)| n.starts_with("Node@"))
        .map(|(i, _)| i as u64)
        .collect();
    assert_eq!(node_sites.len(), 1, "one Node allocation site");
    let vpc = cs.engine.relation_tuples("vPC").unwrap();
    // push's `n` has two clones (one per call site).
    let n_var = var_id(&facts, "push::n");
    let ctxs: std::collections::HashSet<u64> =
        vpc.iter().filter(|t| t[1] == n_var).map(|t| t[0]).collect();
    assert_eq!(ctxs.len(), 2, "push is cloned per call site");
}

#[test]
fn numbering_counts_match_call_structure() {
    let (facts, _cg, numbering) = pipeline();
    // push and peek are each called twice from main: 2 contexts each.
    let m_push = facts
        .method_names
        .iter()
        .position(|n| n.ends_with(".push"))
        .unwrap();
    let m_peek = facts
        .method_names
        .iter()
        .position(|n| n.ends_with(".peek"))
        .unwrap();
    assert_eq!(numbering.counts[m_push], 2);
    assert_eq!(numbering.counts[m_peek], 2);
    assert_eq!(numbering.total_paths(), 2);
}

#[test]
fn leak_query_through_umbrella() {
    let (facts, cg, numbering) = pipeline();
    let a_site = facts.heap_names[heap_id(&facts, "A@") as usize].clone();
    let report = leak_query(&facts, &cg, &numbering, &a_site).unwrap();
    // The A object is held by Node.payload.
    assert!(report
        .who_points_to
        .iter()
        .any(|(h, f)| h.starts_with("Node@") && f == "payload"));
    // The store happened in push (context of the first call).
    assert!(report
        .who_dunnit
        .iter()
        .any(|(_, b, f, _)| { b.contains("push::n") && f == "payload" }));
}

#[test]
fn refinement_through_umbrella() {
    let (facts, cg, numbering) = pipeline();
    let ci = type_refinement(&facts, None, None, RefineVariant::CiTyped).unwrap();
    let cs = type_refinement(
        &facts,
        Some(&cg),
        Some(&numbering),
        RefineVariant::CsPointer,
    )
    .unwrap();
    assert!(
        cs.multi <= ci.multi,
        "context sensitivity cannot lose precision"
    );
    assert!(ci.pointer_vars > 0);
}

#[test]
fn deterministic_results_across_runs() {
    let (facts1, cg1, num1) = pipeline();
    let (facts2, cg2, num2) = pipeline();
    assert_eq!(facts1.vp0, facts2.vp0);
    assert_eq!(cg1.edges, cg2.edges);
    assert_eq!(num1.counts, num2.counts);
    let cs1 = context_sensitive(&facts1, &cg1, &num1, None).unwrap();
    let cs2 = context_sensitive(&facts2, &cg2, &num2, None).unwrap();
    let mut t1 = cs1.engine.relation_tuples("vPC").unwrap();
    let mut t2 = cs2.engine.relation_tuples("vPC").unwrap();
    t1.sort();
    t2.sort();
    assert_eq!(t1, t2);
}

/// Raw Datalog through the umbrella crate: the engine is a usable
/// deductive database on its own.
#[test]
fn raw_datalog_access() {
    let program = Program::parse(
        "DOMAINS\nV 32\nRELATIONS\ninput e (s : V, d : V)\noutput tc (s : V, d : V)\nRULES\ntc(x,y) :- e(x,y).\ntc(x,z) :- tc(x,y), e(y,z).",
    )
    .unwrap();
    let mut engine = Engine::new(program).unwrap();
    for i in 0..10 {
        engine.add_fact("e", &[i, i + 1]).unwrap();
    }
    engine.solve().unwrap();
    assert_eq!(engine.relation_count("tc").unwrap() as u64, 55);
}

/// Raw BDD access through the umbrella crate.
#[test]
fn raw_bdd_access() {
    use whale::bdd::{BddManager, DomainSpec, OrderSpec};
    let mgr = BddManager::with_domains(
        &[DomainSpec::new("D", 1000)],
        &OrderSpec::parse("D").unwrap(),
    )
    .unwrap();
    let d = mgr.domain("D").unwrap();
    let r = mgr.domain_range(d, 100, 899);
    assert_eq!(r.satcount_domains(&[d]) as u64, 800);
}
