//! Quickstart: the whole pipeline on the classic polyvariance example.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Demonstrates why context sensitivity matters: a context-insensitive
//! analysis merges the two calls of `Id::id`, so `ra` appears to point to
//! both objects; the paper's cloning-based context-sensitive analysis
//! keeps the calls apart.

use whale::prelude::*;

const PROGRAM: &str = r#"
class A extends Object { }
class B extends Object { }
class Id extends Object {
  static method id(p: Object): Object {
    return p;
  }
}
class Main extends Object {
  entry static method main() {
    var a: A;
    var b: B;
    var ra: Object;
    var rb: Object;
    a = new A;
    b = new B;
    ra = Id::id(a);
    rb = Id::id(b);
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the subject program and extract Datalog facts (the paper's
    //    Joeq step).
    let program = parse_program(PROGRAM)?;
    let facts = Facts::extract(&program);
    println!(
        "program: {} classes, {} methods, {} statements",
        program.classes.len(),
        program.methods.len(),
        program.statement_count()
    );

    // 2. Context-insensitive points-to analysis (Algorithm 2).
    let ci = context_insensitive(&facts, true, CallGraphMode::Cha, None)?;
    println!("\ncontext-insensitive vP (variable -> heap):");
    for t in ci.engine.relation_tuples("vP")? {
        println!(
            "  {:<28} -> {}",
            ci.engine.name_of("V", t[0]).unwrap_or("?"),
            ci.engine.name_of("H", t[1]).unwrap_or("?")
        );
    }

    // 3. The cloning-based context-sensitive analysis (Algorithms 4 + 5).
    let cg = CallGraph::from_cha(&facts)?;
    let numbering = number_contexts(&cg);
    println!(
        "\ncall graph: {} edges; most-cloned method has {} contexts",
        cg.edges.len(),
        numbering.total_paths()
    );
    let cs = context_sensitive(&facts, &cg, &numbering, None)?;
    println!("context-sensitive vPC (context, variable -> heap):");
    for t in cs.engine.relation_tuples("vPC")? {
        println!(
            "  [ctx {}] {:<28} -> {}",
            t[0],
            cs.engine.name_of("V", t[1]).unwrap_or("?"),
            cs.engine.name_of("H", t[2]).unwrap_or("?")
        );
    }

    // 4. The headline observation, programmatically.
    let ra = facts
        .var_names
        .iter()
        .position(|n| n.contains("::ra#"))
        .unwrap() as u64;
    let ci_pointees = ci
        .engine
        .relation_tuples("vP")?
        .iter()
        .filter(|t| t[0] == ra)
        .count();
    let cs_pointees = cs
        .engine
        .relation_tuples("vPC")?
        .iter()
        .filter(|t| t[1] == ra)
        .count();
    println!(
        "\nra points to {ci_pointees} objects context-insensitively, \
         but only {cs_pointees} with cloning-based context sensitivity."
    );
    assert_eq!(ci_pointees, 2);
    assert_eq!(cs_pointees, 1);
    Ok(())
}
