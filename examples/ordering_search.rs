//! Section 2.4.2: BDD performance "depends greatly on the ordering of the
//! variables", and finding the best ordering is NP-complete, so `bddbddb`
//! "automatically explores different alternatives empirically". This
//! example runs that search on a small synthetic benchmark and reports
//! what it found.
//!
//! Run with: `cargo run --release --example ordering_search`

use whale::core::order_search::search_ci_order;
use whale::ir::{synth, Facts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A down-scaled benchmark: orderings found on small inputs transfer to
    // larger inputs of the same shape, which is how the paper's search was
    // used in practice.
    let config = synth::benchmarks()[0].scaled(1, 16);
    let program = synth::generate(&config);
    let facts = Facts::extract(&program);
    println!(
        "searching variable orderings on {} ({} methods, {} vars)",
        config.name,
        program.methods.len(),
        facts.sizes.v
    );

    let result = search_ci_order(&facts, 12)?;
    println!("\nevaluations (peak live BDD nodes, lower is better):");
    for cand in &result.evaluated {
        let marker = if cand.order == result.best.order {
            "  <-- best"
        } else {
            ""
        };
        println!(
            "  {:<24} {:>9} nodes  {:>8.1?}{marker}",
            cand.order, cand.peak_nodes, cand.elapsed
        );
    }
    println!(
        "\nbest ordering: {} ({} peak nodes over {} candidates)",
        result.best.order,
        result.best.peak_nodes,
        result.evaluated.len()
    );
    assert!(result
        .evaluated
        .iter()
        .all(|c| c.peak_nodes >= result.best.peak_nodes));
    Ok(())
}
