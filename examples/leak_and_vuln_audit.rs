//! The Section 5.1/5.2 queries: debugging a memory leak and auditing for a
//! JCE-style security vulnerability, on top of the context-sensitive
//! points-to results.
//!
//! Run with: `cargo run --example leak_and_vuln_audit`

use whale::core::queries::{leak_query, vuln_query};
use whale::ir::{MethodKind, ProgramBuilder};
use whale::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    leak_part()?;
    vuln_part()?;
    Ok(())
}

/// Section 5.1: the programmer suspects the object allocated for the
/// request buffer leaks through a cache.
fn leak_part() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(
        r#"
class Cache extends Object {
  field entry: Object;
}
class Server extends Object {
  entry static method main() {
    var cache: Cache;
    var request: Object;
    var scratch: Object;
    cache = new Cache;
    request = new Object;
    scratch = new Object;
    Server::remember(cache, request);
  }
  static method remember(c: Cache, o: Object) {
    c.entry = o;
  }
}
"#,
    )?;
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts)?;
    let numbering = number_contexts(&cg);

    // The `request` allocation site, named like the paper's "a.java:57".
    let leaked = facts
        .heap_names
        .iter()
        .find(|n| n.starts_with("java.lang.Object@Server.main:1"))
        .expect("request allocation site")
        .clone();
    println!("== memory-leak query for {leaked} ==");
    let report = leak_query(&facts, &cg, &numbering, &leaked)?;
    println!("whoPointsTo (objects/fields retaining it):");
    for (h, f) in &report.who_points_to {
        println!("  {h} . {f}");
    }
    println!("whoDunnit (stores that created the reference, with context):");
    for (c, base, f, src) in &report.who_dunnit {
        println!("  [ctx {c}] {base}.{f} = {src}");
    }
    assert!(!report.who_points_to.is_empty());
    Ok(())
}

/// Section 5.2: secret keys must not be derived from immutable Strings.
fn vuln_part() -> Result<(), Box<dyn std::error::Error>> {
    // Built with the builder API so String itself carries a producer
    // method, as java.lang.String does.
    let mut b = ProgramBuilder::new();
    let obj = b.object_class();
    let string = b.string_class();
    let to_chars = b.method(string, "toCharArray", MethodKind::Static, &[], Some(string));
    {
        let s = b.local(to_chars, "s", string);
        b.stmt_new(to_chars, s, string);
        b.stmt_return(to_chars, s);
    }
    let spec = b.class("javax.crypto.PBEKeySpec", Some(obj));
    let init = b.method(spec, "init", MethodKind::Static, &[("key", obj)], None);

    let app = b.class("app.Crypto", Some(obj));
    // Good: key built as a fresh byte buffer.
    let good = b.method(app, "goodKey", MethodKind::Static, &[], None);
    {
        let k = b.local(good, "key", obj);
        b.stmt_new(good, k, obj);
        b.stmt_call_static(good, init, &[k], None);
    }
    // Bad: key derived from a String, laundered through a helper.
    let launder = b.method(app, "launder", MethodKind::Static, &[("x", obj)], Some(obj));
    {
        let x = b.program().methods[launder.index()].formals[0];
        b.stmt_return(launder, x);
    }
    let bad = b.method(app, "badKey", MethodKind::Static, &[], None);
    {
        let s = b.local(bad, "s", string);
        let k = b.local(bad, "key", obj);
        b.stmt_call_static(bad, to_chars, &[], Some(s));
        b.stmt_call_static(bad, launder, &[s], Some(k));
        b.stmt_call_static(bad, init, &[k], None);
    }
    b.entry(good);
    b.entry(bad);
    let program = b.finish();

    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts)?;
    let numbering = number_contexts(&cg);
    println!("\n== security audit: String-derived keys into PBEKeySpec.init ==");
    let vulns = vuln_query(&facts, &cg, &numbering, "javax.crypto.PBEKeySpec.init", 0)?;
    if vulns.is_empty() {
        println!("no vulnerable call sites");
    }
    for v in &vulns {
        println!(
            "  VULNERABLE: invocation {} in {} (context {})",
            v.invoke, v.in_method, v.context
        );
    }
    assert_eq!(vulns.len(), 1, "only badKey's call is flagged");
    assert_eq!(vulns[0].in_method, "app.Crypto.badKey");
    Ok(())
}
