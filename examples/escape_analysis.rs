//! The Section 5.6 thread-escape analysis: which objects stay local to the
//! thread that created them (allocatable on a thread-local heap), and
//! which synchronization operations are unnecessary.
//!
//! Run with: `cargo run --example escape_analysis`

use whale::prelude::*;

const PROGRAM: &str = r#"
class Job extends Object {
  field payload: Object;
}
class Worker extends Thread {
  field inbox: Job;

  method run() {
    var scratch: Object;
    var job: Job;
    var data: Object;
    // Thread-local scratch space: never leaves this thread.
    scratch = new Object;
    sync scratch;
    // Work shared by the spawner: escapes.
    job = this.inbox;
    data = job.payload;
    sync job;
  }
}
class Main extends Object {
  entry static method main() {
    var w: Worker;
    var job: Job;
    var payload: Object;
    w = new Worker;
    job = new Job;
    payload = new Object;
    job.payload = payload;
    w.inbox = job;
    start w;
    sync job;
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(PROGRAM)?;
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts)?;
    let escape = thread_escape(&facts, &cg, None)?;

    println!(
        "thread contexts: {} (0 = globals, 1 = main thread, 2.. = worker clones)",
        escape.contexts.domain_size
    );
    let e = &escape.engine;

    println!("\nescaped objects (context, allocation site):");
    for t in e.relation_tuples("escaped")? {
        println!("  [ctx {}] {}", t[0], e.name_of("H", t[1]).unwrap_or("?"));
    }
    println!("captured objects (eligible for thread-local allocation):");
    for t in e.relation_tuples("captured")? {
        println!("  [ctx {}] {}", t[0], e.name_of("H", t[1]).unwrap_or("?"));
    }
    println!("synchronizations that can be removed:");
    for t in e.relation_tuples("unneededSyncs")? {
        println!(
            "  [ctx {}] sync {}",
            t[0],
            e.name_of("V", t[1]).unwrap_or("?")
        );
    }
    println!("synchronizations that must stay:");
    for t in e.relation_tuples("neededSyncs")? {
        println!(
            "  [ctx {}] sync {}",
            t[0],
            e.name_of("V", t[1]).unwrap_or("?")
        );
    }

    // The shape the analysis must find:
    let scratch_site = facts
        .heap_names
        .iter()
        .position(|n| n.starts_with("java.lang.Object@Worker.run"))
        .unwrap() as u64;
    let job_site = facts
        .heap_names
        .iter()
        .position(|n| n.starts_with("Job@"))
        .unwrap() as u64;
    let escaped = e.relation_tuples("escaped")?;
    let captured = e.relation_tuples("captured")?;
    assert!(
        captured.iter().any(|t| t[1] == scratch_site),
        "scratch stays captured"
    );
    assert!(
        escaped.iter().any(|t| t[1] == job_site),
        "the job escapes to the worker"
    );
    let (cap, esc) = escape.object_counts()?;
    let (unneeded, needed) = escape.sync_counts()?;
    println!("\nsummary: captured={cap} escaped={esc} syncs unneeded={unneeded} needed={needed}");
    assert!(unneeded >= 1, "sync scratch is removable");
    assert!(needed >= 1, "sync job must stay");
    Ok(())
}
