//! Information-flow audit: a declarative source/sink/sanitizer spec run
//! against a web-handler-shaped program, with BDD-reconstructed witness
//! paths showing each flow step by step — including one that crosses the
//! heap through a request object's field.
//!
//! Run with: `cargo run --example taint_audit`

use whale::prelude::*;

const PROGRAM: &str = r#"
class Request extends Object {
  field param: Object;
}
class Net extends Object {
  // Source: attacker-controlled input.
  static method recv(): Object {
    var raw: Object;
    raw = new Object;
    return raw;
  }
}
class Esc extends Object {
  // Sanitizer: escaping makes the value safe for the query sink.
  static method escape(s: Object): Object {
    return s;
  }
}
class Db extends Object {
  // Sink: the query string must never be raw network input.
  static method query(q: Object) { }
}
class Handler extends Object {
  entry static method unsafe() {
    var req: Request;
    var raw: Object;
    var got: Object;
    req = new Request;
    raw = Net::recv();
    // The tainted value takes a detour through the heap: stored into
    // the request, loaded back out, then passed to the sink.
    req.param = raw;
    got = req.param;
    Db::query(got);
  }
  entry static method safe() {
    var raw: Object;
    var clean: Object;
    raw = Net::recv();
    clean = Esc::escape(raw);
    Db::query(clean);
  }
}
"#;

const SPEC: &str = "\
# Anything received from the network is tainted until escaped.
source method Net.recv
sink method Db.query 0
sanitizer method Esc.escape
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(PROGRAM)?;
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts)?;
    let numbering = number_contexts(&cg);
    let spec = TaintSpec::parse(SPEC)?;
    let result = taint_analysis(&facts, &cg, &numbering, &spec, None)?;

    println!("{} tainted flow(s) reach a sink", result.findings.len());
    for f in &result.findings {
        println!("  {} called in {}:", f.sink_method, f.in_method);
        for s in &f.witness {
            println!("    {:?}\t{} (ctx {})", s.kind, s.var_name, s.context);
        }
    }

    // The audit must flag the unsafe handler and only it: the safe twin
    // routes the same source through the sanitizer, which the engine
    // subtracts before the fixpoint.
    assert_eq!(result.findings.len(), 1, "exactly the unsafe handler");
    let finding = &result.findings[0];
    assert_eq!(finding.in_method, "Handler.unsafe");
    assert!(
        finding.witness.iter().any(|s| s.kind == FlowKind::Heap),
        "the witness crosses the heap through Request.param"
    );
    result
        .validate_witness(finding)
        .expect("witness well-formed");
    println!("\nthe sanitized Handler.safe twin is correctly silent");
    Ok(())
}
