//! Static data-race audit: field-access pairs on thread-escaping objects
//! under distinct thread contexts, with the singleton-lock-set check
//! separating a real race from its correctly guarded twin.
//!
//! Run with: `cargo run --example race_audit`

use whale::prelude::*;

const PROGRAM: &str = r#"
class Counter extends Object {
  field value: Object;
}
class RacyWorker extends Thread {
  field counter: Counter;

  method run() {
    var c: Counter;
    var v: Object;
    c = this.counter;
    v = new Object;
    // Unsynchronized write to a shared Counter: every clone of this
    // worker races with every other clone here.
    c.value = v;
  }
}
class SafeWorker extends Thread {
  field counter: Counter;
  field lock: Object;

  method run() {
    var c: Counter;
    var l: Object;
    var v: Object;
    c = this.counter;
    l = this.lock;
    v = new Object;
    sync l {
      c.value = v;
    }
  }
}
class Main extends Object {
  entry static method main() {
    var racy: Counter;
    var safe: Counter;
    var lock: Object;
    var rw: RacyWorker;
    var sw: SafeWorker;
    racy = new Counter;
    safe = new Counter;
    lock = new Object;
    rw = new RacyWorker;
    rw.counter = racy;
    start rw;
    sw = new SafeWorker;
    sw.counter = safe;
    sw.lock = lock;
    start sw;
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(PROGRAM)?;
    let facts = Facts::extract(&program);
    let cg = CallGraph::from_cha(&facts)?;
    let races = detect_races(&facts, &cg, None)?;

    println!(
        "{} racy pair(s) from {} raw tuples",
        races.report.pairs.len(),
        races.report.raw_tuples
    );
    for p in &races.report.pairs {
        println!(
            "  {} on {}.{}:",
            if p.write_write {
                "write/write"
            } else {
                "write/read"
            },
            p.object,
            p.field
        );
        println!("    {} (thread context {})", p.access1.1, p.access1.0);
        println!("    {} (thread context {})", p.access2.1, p.access2.0);
    }

    // The audit must flag the unguarded Counter and only it: the
    // SafeWorker twin writes under a singleton lock allocated once in
    // main, which the lock-set check recognizes as a common lock.
    assert_eq!(races.report.pairs.len(), 1, "exactly the racy counter");
    let pair = &races.report.pairs[0];
    assert!(pair.write_write);
    assert_eq!(pair.field, "value");
    assert!(pair.access1.1.contains("RacyWorker.run"));
    println!("\nthe guarded SafeWorker twin is correctly silent");
    Ok(())
}
