//! Reproduces Figures 1 and 2 of the paper: the context numbering of the
//! six-method example call graph, including the M2–M3 strongly connected
//! component and the six reduced call paths reaching M6.
//!
//! Run with: `cargo run --example path_numbering`

use whale::core::{number_contexts, CallGraph, EdgeContexts};

fn main() {
    // The call graph of Figure 1. Edge names a..i as in the paper:
    //   a: M1->M2   b: M1->M3   c: M2->M3   d: M3->M2
    //   e: M2->M4   f: M3->M4   g: M3->M5   h: M4->M6   i: M5->M6
    let names = ["M1", "M2", "M3", "M4", "M5", "M6"];
    let edge_names = ["a", "b", "c", "d", "e", "f", "g", "h", "i"];
    let cg = CallGraph {
        methods: 6,
        edges: vec![
            (0, 0, 1),
            (1, 0, 2),
            (2, 1, 2),
            (3, 2, 1),
            (4, 1, 3),
            (5, 2, 3),
            (6, 2, 4),
            (7, 3, 5),
            (8, 4, 5),
        ],
        entries: vec![0],
    };
    let numbering = number_contexts(&cg);

    println!("Figure 1: context counts per method");
    for (m, name) in names.iter().enumerate() {
        let scc_mates: Vec<&str> = (0..6)
            .filter(|&o| o != m && numbering.scc_of[o] == numbering.scc_of[m])
            .map(|o| names[o])
            .collect();
        let scc = if scc_mates.is_empty() {
            String::new()
        } else {
            format!("  (SCC with {})", scc_mates.join(", "))
        };
        println!("  {name}: {} context(s){scc}", numbering.counts[m]);
    }

    println!("\nEdge context mappings (source range -> target range):");
    for (e, &(_, caller, callee)) in cg.edges.iter().enumerate() {
        let desc = match numbering.edge_contexts[e] {
            EdgeContexts::Shift { callers, offset } => format!(
                "{}[1..={callers}] -> {}[{}..={}]",
                names[caller as usize],
                names[callee as usize],
                offset + 1,
                offset + callers
            ),
            EdgeContexts::Identity { contexts } => format!(
                "{}[i] -> {}[i]  (same SCC, {contexts} context(s))",
                names[caller as usize], names[callee as usize]
            ),
            EdgeContexts::Merged { callers, merged } => format!(
                "{}[1..={callers}] -> {}[{merged}]  (overflow merge)",
                names[caller as usize], names[callee as usize]
            ),
        };
        println!("  edge {}: {desc}", edge_names[e]);
    }

    // Figure 2: enumerate the reduced call paths reaching M6 by walking the
    // numbered graph backwards.
    println!("\nFigure 2: the {} contexts of M6:", numbering.counts[5]);
    let mut paths: Vec<(u64, String)> = Vec::new();
    // Context c of M6 came through edge h (from M4) or i (from M5).
    for (e, &(_, caller, callee)) in cg.edges.iter().enumerate() {
        if callee != 5 {
            continue;
        }
        if let EdgeContexts::Shift { callers, offset } = numbering.edge_contexts[e] {
            for x in 1..=callers {
                // Reconstruct one representative reduced path per context by
                // tracing the numbering backwards.
                let path = trace(&cg, &numbering, edge_names, caller as usize, x);
                paths.push(((x + offset) as u64, format!("{}{}", path, edge_names[e])));
            }
        }
    }
    paths.sort();
    for (ctx, path) in &paths {
        println!("  context {ctx}: reduced path {path}");
    }
    assert_eq!(paths.len(), 6, "M6 has six contexts");
}

/// Traces context `ctx` of method `m` back to the root, returning the edge
/// string of the reduced call path.
fn trace(
    cg: &CallGraph,
    numbering: &whale::core::ContextNumbering,
    edge_names: [&str; 9],
    m: usize,
    ctx: u128,
) -> String {
    if numbering.counts[m] == 1 && !cg.edges.iter().any(|&(_, _, t)| t as usize == m) {
        return String::new(); // root
    }
    for (e, &(_, caller, callee)) in cg.edges.iter().enumerate() {
        // Contexts are shared by the whole SCC: follow any edge entering it.
        if numbering.scc_of[callee as usize] != numbering.scc_of[m]
            || numbering.scc_of[caller as usize] == numbering.scc_of[m]
        {
            continue;
        }
        if let EdgeContexts::Shift { callers, offset } = numbering.edge_contexts[e] {
            if ctx > offset && ctx <= offset + callers {
                let prev = trace(cg, numbering, edge_names, caller as usize, ctx - offset);
                return format!("{prev}{}", edge_names[e]);
            }
        }
    }
    String::new()
}
