#!/usr/bin/env bash
# Tier-1 verify, hermetically: build + full workspace test suite with the
# network off. Run from anywhere; operates on the repo this script lives in.
#
# The workspace has zero external dependencies (see DESIGN.md, "Hermetic
# builds & determinism"), so --offline must always succeed; if it does not,
# a crate dependency has leaked in and this script is the tripwire.
set -euo pipefail

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release --workspace --offline
cargo test -q --workspace --offline

# Lint gate: warnings are errors across every target.
cargo clippy --workspace --all-targets --offline -- -D warnings

# Formatting gate: enforced when rustfmt is installed, skipped otherwise so
# minimal toolchains can still run the tier-1 verify.
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "ci.sh: rustfmt not installed, skipping cargo fmt --check" >&2
fi

# Doc gate: rustdoc must be warnings-clean (broken intra-doc links, bad
# code fences) across the workspace.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

# Smoke-bench: a short bdd_ops run (JSON lines, including the per-cache
# hit/miss/eviction counters) appended nowhere — it overwrites
# results/bench_smoke.jsonl so the perf trajectory has a per-commit
# baseline. 3 iterations keep it fast; real measurements use the default
# counts.
mkdir -p results
TESTKIT_BENCH_ITERS=3 TESTKIT_BENCH_WARMUP=1 \
    ./target/release/bdd_ops > results/bench_smoke.jsonl
# One race-detector record (tiny config) appended to the same file.
./target/release/race_probe >> results/bench_smoke.jsonl
# One taint-engine record (tiny config) appended likewise.
./target/release/taint_probe >> results/bench_smoke.jsonl
# Two reordering records (kernel sift rescue + engine-level reorder on the
# tiny config) appended likewise.
./target/release/reorder_probe >> results/bench_smoke.jsonl
# Two op-cache policy records (adaptive vs legacy at layers 9) appended
# likewise. --check-floor is the regression gate: the appex hit rate of
# the adaptive configuration must not fall below the committed floor
# (measured 0.091 at layers 9; see EXPERIMENTS.md).
./target/release/cache_probe 9 --check-floor 0.085 >> results/bench_smoke.jsonl
# One parallel-solver record (layers 4, jobs=1 vs jobs=4 wall time plus
# speedup) appended likewise. The probe also asserts the two runs produce
# identical relations, so this doubles as a determinism smoke gate; the
# record's `cores` field keeps single-core hosts honest.
./target/release/par_probe 4 >> results/bench_smoke.jsonl
# A jobs=2 smoke solve through the bddbddb CLI: the parallel scheduler,
# the per-worker managers and the snapshot transfer path all get exercised
# end to end on every verify run.
par_dir=$(mktemp -d)
printf 'DOMAINS\nV 64\nRELATIONS\ninput edge (s : V, d : V)\noutput path (s : V, d : V)\nRULES\npath(x,y) :- edge(x,y).\npath(x,z) :- path(x,y), edge(y,z).\n' > "$par_dir/tc.datalog"
printf '0 1\n1 2\n2 3\n3 0\n' > "$par_dir/edge.tuples"
./target/release/bddbddb "$par_dir/tc.datalog" --facts "$par_dir" --out "$par_dir" --jobs 2 --stats
grep -q '^0 1$' "$par_dir/path.tuples"
rm -rf "$par_dir"
echo "ci.sh: smoke bench written to results/bench_smoke.jsonl"

echo "ci.sh: OK"
